package main

import (
	"bytes"
	"strings"
	"testing"
)

// Regression test: out-of-range -table/-figure selections used to print
// nothing and exit 0; they must now be rejected with a usage error.
func TestValidateSelection(t *testing.T) {
	valid := []struct{ table, figure int }{
		{0, 0}, {1, 0}, {4, 0}, {0, 1}, {0, 3}, {2, 2},
	}
	for _, c := range valid {
		if err := validateSelection(c.table, c.figure); err != nil {
			t.Errorf("validateSelection(%d, %d) = %v, want nil", c.table, c.figure, err)
		}
	}
	invalid := []struct{ table, figure int }{
		{5, 0}, {-1, 0}, {99, 0}, {0, 4}, {0, -1}, {5, 4},
	}
	for _, c := range invalid {
		if err := validateSelection(c.table, c.figure); err == nil {
			t.Errorf("validateSelection(%d, %d) = nil, want error", c.table, c.figure)
		}
	}
}

// TestRunTimeoutBestEffort: an immediately-expiring -timeout must degrade
// the whole exploration to best-effort results — exit 0, the requested
// table printed, and the deadline note on stderr — never an abort.
func TestRunTimeoutBestEffort(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-size", "64", "-timeout", "1ns", "-table", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "best-effort") {
		t.Fatalf("stderr missing deadline note: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 4") {
		t.Fatalf("degraded run printed no Table 4:\n%s", stdout.String())
	}
}

// TestRunCompletesSmall: an unconstrained small run prints every table and
// reports no degradation.
func TestRunCompletesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale run skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-size", "64"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "MACP:", "Decisions:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q", want)
		}
	}
	if strings.Contains(stdout.String(), "best-effort") || strings.Contains(stderr.String(), "best-effort") {
		t.Fatal("unconstrained run reported best-effort results")
	}
}

// TestRunWorkersDeterministic: the CLI's -workers width must not change a
// single output byte — the whole point of the deterministic parallel
// exploration.
func TestRunWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale runs skipped in -short mode")
	}
	outputs := make([]string, 0, 2)
	for _, w := range []string{"1", "3"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-size", "64", "-workers", w}, &stdout, &stderr); code != 0 {
			t.Fatalf("-workers %s: exit %d, stderr: %s", w, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-workers=1 and -workers=3 outputs differ:\n--- workers=1\n%s\n--- workers=3\n%s",
			outputs[0], outputs[1])
	}
}

// TestRunUsageErrors: invalid selectors and a negative timeout are usage
// errors (exit 2) rejected before any work.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "5"},
		{"-figure", "9"},
		{"-timeout", "-1s"},
		{"-workers", "0"},
		{"-workers", "-4"},
		{"-nosuchflag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: no usage message on stderr", args)
		}
	}
}
