package main

import "testing"

// Regression test: out-of-range -table/-figure selections used to print
// nothing and exit 0; they must now be rejected with a usage error.
func TestValidateSelection(t *testing.T) {
	valid := []struct{ table, figure int }{
		{0, 0}, {1, 0}, {4, 0}, {0, 1}, {0, 3}, {2, 2},
	}
	for _, c := range valid {
		if err := validateSelection(c.table, c.figure); err != nil {
			t.Errorf("validateSelection(%d, %d) = %v, want nil", c.table, c.figure, err)
		}
	}
	invalid := []struct{ table, figure int }{
		{5, 0}, {-1, 0}, {99, 0}, {0, 4}, {0, -1}, {5, 4},
	}
	for _, c := range invalid {
		if err := validateSelection(c.table, c.figure); err == nil {
			t.Errorf("validateSelection(%d, %d) = nil, want error", c.table, c.figure)
		}
	}
}
