package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		size    int
		quant   int
		wantErr bool
	}{
		{"defaults", 1024, 1, false},
		{"small", 2, 3, false},
		{"size too small", 1, 1, true},
		{"zero size", 0, 1, true},
		{"zero quant", 64, 0, true},
		{"negative quant", 64, -2, true},
	}
	for _, c := range cases {
		err := validateFlags(c.size, c.quant)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestRunDefault: the plain profile run must report the dominant arrays and
// the reuse summary, and exit 0.
func TestRunDefault(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-size", "64"}, &out, &errB); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errB.String())
	}
	s := out.String()
	for _, want := range []string{
		"BTPC encoder profile, 64x64 image",
		"image array reuse (LRU miss ratio by buffer size):",
		"image", "pyr", "ridge",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "per scope:") {
		t.Error("per-scope section printed without -scopes")
	}
}

// TestRunScopes: -scopes adds the per-loop-scope breakdown of the large
// arrays.
func TestRunScopes(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-size", "64", "-scopes"}, &out, &errB); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errB.String())
	}
	s := out.String()
	for _, want := range []string{"image per scope:", "pyr per scope:", "ridge per scope:", "reads"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunFlagErrors: invalid flags exit 2 without producing a profile.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-size", "1"},
		{"-quant", "0"},
		{"-nosuchflag"},
	}
	for _, args := range cases {
		var out, errB bytes.Buffer
		if code := run(args, &out, &errB); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errB.String())
		}
		if out.Len() != 0 {
			t.Errorf("run(%v) wrote output despite flag error:\n%s", args, out.String())
		}
	}
}
