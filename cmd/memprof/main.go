// Command memprof prints the profiled memory-access counts of the BTPC
// encoder — the §4.1 basic-group analysis view the designer uses to find
// the dominant arrays — plus the reuse-distance summary of the image array.
//
// Usage:
//
//	memprof [-size 1024] [-seed 1] [-quant 1] [-scopes]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/btpc"
	"repro/internal/img"
	"repro/internal/reuse"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validateFlags rejects parameter values the encoder would choke on.
func validateFlags(size int, quant int) error {
	if size < 2 {
		return fmt.Errorf("memprof: -size %d out of range (must be >= 2)", size)
	}
	if quant < 1 {
		return fmt.Errorf("memprof: -quant %d out of range (must be >= 1)", quant)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	size := fs.Int("size", 1024, "image side length")
	seed := fs.Uint64("seed", 1, "synthetic image seed")
	quant := fs.Int("quant", 1, "quantization step")
	scopes := fs.Bool("scopes", false, "also print per-loop-scope counts for the large arrays")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := validateFlags(*size, *quant); err != nil {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return 2
	}

	rec := trace.NewRecorder()
	rec.EnableAddressTrace("image")
	src := img.Synthetic(*size, *size, *seed)
	_, stats, err := btpc.Encode(src, btpc.Params{Quant: *quant}, rec)
	if err != nil {
		fmt.Fprintln(stderr, "memprof:", err)
		return 1
	}

	fmt.Fprintf(stdout, "BTPC encoder profile, %dx%d image, quant %d, %.3f bpp\n\n",
		*size, *size, *quant, stats.BitsPerPixel())
	fmt.Fprint(stdout, rec.Report())

	prof := reuse.Analyze(rec.Addresses("image"))
	fmt.Fprintf(stdout, "\nimage array reuse (LRU miss ratio by buffer size):\n")
	for _, s := range []int64{4, 12, 64, 256, 1024, 5 * int64(*size), 4 * int64(*size) * int64(*size) / 100} {
		fmt.Fprintf(stdout, "  %8d words: %5.1f%%\n", s, 100*prof.MissRatio(s))
	}

	if *scopes {
		for _, arr := range []string{"image", "pyr", "ridge"} {
			fmt.Fprintf(stdout, "\n%s per scope:\n", arr)
			type row struct {
				scope string
				c     trace.Counts
			}
			var rows []row
			for _, scope := range scopeList(rec, arr) {
				rows = append(rows, row{scope, rec.ArrayScope(arr, scope)})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].scope < rows[j].scope })
			for _, r := range rows {
				fmt.Fprintf(stdout, "  %-16s %12d reads %12d writes\n", r.scope, r.c.Reads, r.c.Writes)
			}
		}
	}
	return 0
}

// scopeList enumerates the scopes that actually saw accesses to arr.
func scopeList(rec *trace.Recorder, arr string) []string {
	var out []string
	for _, scope := range []string{"", "input", "tabinit", "enc/top"} {
		if rec.ArrayScope(arr, scope).Total() > 0 {
			out = append(out, scope)
		}
	}
	for k := 0; k < 32; k++ {
		scope := fmt.Sprintf("enc/level%d", k)
		if rec.ArrayScope(arr, scope).Total() > 0 {
			out = append(out, scope)
		}
	}
	return out
}
