// Command memprof prints the profiled memory-access counts of the BTPC
// encoder — the §4.1 basic-group analysis view the designer uses to find
// the dominant arrays — plus the reuse-distance summary of the image array.
//
// Usage:
//
//	memprof [-size 1024] [-seed 1] [-quant 1] [-scopes]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/btpc"
	"repro/internal/img"
	"repro/internal/reuse"
	"repro/internal/trace"
)

func main() {
	size := flag.Int("size", 1024, "image side length")
	seed := flag.Uint64("seed", 1, "synthetic image seed")
	quant := flag.Int("quant", 1, "quantization step")
	scopes := flag.Bool("scopes", false, "also print per-loop-scope counts for the large arrays")
	flag.Parse()

	rec := trace.NewRecorder()
	rec.EnableAddressTrace("image")
	src := img.Synthetic(*size, *size, *seed)
	_, stats, err := btpc.Encode(src, btpc.Params{Quant: *quant}, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprof:", err)
		os.Exit(1)
	}

	fmt.Printf("BTPC encoder profile, %dx%d image, quant %d, %.3f bpp\n\n",
		*size, *size, *quant, stats.BitsPerPixel())
	fmt.Print(rec.Report())

	prof := reuse.Analyze(rec.Addresses("image"))
	fmt.Printf("\nimage array reuse (LRU miss ratio by buffer size):\n")
	for _, s := range []int64{4, 12, 64, 256, 1024, 5 * int64(*size), 4 * int64(*size) * int64(*size) / 100} {
		fmt.Printf("  %8d words: %5.1f%%\n", s, 100*prof.MissRatio(s))
	}

	if *scopes {
		for _, arr := range []string{"image", "pyr", "ridge"} {
			fmt.Printf("\n%s per scope:\n", arr)
			type row struct {
				scope string
				c     trace.Counts
			}
			var rows []row
			for _, scope := range scopeList(rec, arr) {
				rows = append(rows, row{scope, rec.ArrayScope(arr, scope)})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].scope < rows[j].scope })
			for _, r := range rows {
				fmt.Printf("  %-16s %12d reads %12d writes\n", r.scope, r.c.Reads, r.c.Writes)
			}
		}
	}
}

// scopeList enumerates the scopes that actually saw accesses to arr.
func scopeList(rec *trace.Recorder, arr string) []string {
	var out []string
	for _, scope := range []string{"", "input", "tabinit", "enc/top"} {
		if rec.ArrayScope(arr, scope).Total() > 0 {
			out = append(out, scope)
		}
	}
	for k := 0; k < 32; k++ {
		scope := fmt.Sprintf("enc/level%d", k)
		if rec.ArrayScope(arr, scope).Total() > 0 {
			out = append(out, scope)
		}
	}
	return out
}
