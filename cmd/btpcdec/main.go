// Command btpcdec decompresses a BTPC stream back to a binary PGM image.
//
// Usage:
//
//	btpcdec [-o out.pgm] input.btpc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/btpc"
	"repro/internal/img"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("btpcdec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output PGM file (default: input with .pgm suffix, stdout if reading stdin)")
	levels := fs.Int("levels", 0, "progressive decode: stop this many pyramid levels early (0 = full quality)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var data []byte
	var err error
	outName := *out
	switch fs.NArg() {
	case 0:
		data, err = io.ReadAll(stdin)
	case 1:
		data, err = os.ReadFile(fs.Arg(0))
		if outName == "" {
			outName = fs.Arg(0) + ".pgm"
		}
	default:
		fmt.Fprintf(stderr, "btpcdec: expected at most one input file, got %d\n", fs.NArg())
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "btpcdec:", err)
		return 1
	}

	var g *img.Gray
	if *levels > 0 {
		g, err = btpc.DecodeProgressive(data, *levels, nil)
	} else {
		g, err = btpc.Decode(data, nil)
	}
	if err != nil {
		fmt.Fprintln(stderr, "btpcdec:", err)
		return 1
	}
	pgm := g.EncodePGM()
	if outName == "" {
		if _, err := stdout.Write(pgm); err != nil {
			fmt.Fprintln(stderr, "btpcdec:", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(outName, pgm, 0o644); err != nil {
		fmt.Fprintln(stderr, "btpcdec:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s (%dx%d)\n", outName, g.W, g.H)
	return 0
}
