// Command btpcdec decompresses a BTPC stream back to a binary PGM image.
//
// Usage:
//
//	btpcdec [-o out.pgm] input.btpc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/btpc"
	"repro/internal/img"
)

func main() {
	out := flag.String("o", "", "output PGM file (default: input with .pgm suffix, stdout if reading stdin)")
	levels := flag.Int("levels", 0, "progressive decode: stop this many pyramid levels early (0 = full quality)")
	flag.Parse()

	var data []byte
	var err error
	outName := *out
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(flag.Arg(0))
		if outName == "" {
			outName = flag.Arg(0) + ".pgm"
		}
	default:
		err = fmt.Errorf("expected at most one input file, got %d", flag.NArg())
	}
	if err != nil {
		fatal(err)
	}

	var g *img.Gray
	if *levels > 0 {
		g, err = btpc.DecodeProgressive(data, *levels, nil)
	} else {
		g, err = btpc.Decode(data, nil)
	}
	if err != nil {
		fatal(err)
	}
	pgm := g.EncodePGM()
	if outName == "" {
		if _, err := os.Stdout.Write(pgm); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(outName, pgm, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%dx%d)\n", outName, g.W, g.H)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btpcdec:", err)
	os.Exit(1)
}
