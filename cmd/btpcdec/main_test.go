package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/btpc"
	"repro/internal/img"
)

func encodeSynthetic(t *testing.T, w, h int) (*img.Gray, []byte) {
	t.Helper()
	src := img.Synthetic(w, h, 3)
	data, _, err := btpc.Encode(src, btpc.Params{Quant: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return src, data
}

// TestDecodeFileRoundTrip drives run() end to end: a .btpc file on disk is
// decoded to a PGM whose pixels match the original image exactly.
func TestDecodeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src, data := encodeSynthetic(t, 40, 24)
	in := filepath.Join(dir, "in.btpc")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.pgm")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, in}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	pgm, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := img.DecodePGM(pgm)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != src.W || got.H != src.H || !bytes.Equal(got.Pix, src.Pix) {
		t.Fatal("decode round trip changed the image")
	}
}

// TestDecodeStdinToStdout: with no input file the decoder reads the stream
// from stdin and writes the PGM to stdout.
func TestDecodeStdinToStdout(t *testing.T) {
	src, data := encodeSynthetic(t, 16, 16)
	var stdout, stderr bytes.Buffer
	if code := run(nil, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	got, err := img.DecodePGM(stdout.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, src.Pix) {
		t.Fatal("stdin decode changed the image")
	}
}

// TestDecodeUsageAndRuntimeErrors: bad invocations exit 2, bad input 1.
func TestDecodeUsageAndRuntimeErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"a", "b"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("two inputs: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-nosuchflag"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(nil, strings.NewReader("not a btpc stream"), &stdout, &stderr); code != 1 {
		t.Fatalf("garbage stream: exit %d, want 1", code)
	}
}
