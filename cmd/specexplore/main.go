// Command specexplore runs the physical memory management stage on a
// pruned specification given as JSON — the designer's entry point for
// applications other than the built-in BTPC demonstrator.
//
// Usage:
//
//	specexplore -budget 20000000 [-onchip 4] [-threshold 65536]
//	            [-frame 1.0] [-inplace] [-interconnect] [-lifetimes]
//	            [-trace out.jsonl] [-stats] spec.json
//
// The specification format is documented in internal/spec (see
// TestJSONHandWrittenSpec for a minimal example).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/inplace"
	"repro/internal/obs"
	"repro/internal/spec"
)

func main() {
	budget := flag.Uint64("budget", 0, "storage cycle budget per frame (required)")
	onchip := flag.Int("onchip", 4, "number of on-chip memories to allocate")
	threshold := flag.Int64("threshold", 64*1024, "words above which a group lives off-chip")
	frame := flag.Float64("frame", 1.0, "frame period in seconds (for access rates)")
	inplaceF := flag.Bool("inplace", false, "enable the in-place mapping extension")
	interconnect := flag.Bool("interconnect", false, "enable the bus interconnect model")
	lifetimes := flag.Bool("lifetimes", false, "print the lifetime analysis and exit")
	traceOut := flag.String("trace", "", "write the exploration telemetry (JSONL spans + counters) to this file")
	stats := flag.Bool("stats", false, "print the per-step telemetry summary to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("expected exactly one spec file, got %d args", flag.NArg()))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	s, err := spec.ReadJSON(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spec %q: %d basic groups, %d loops, %d accesses/frame\n",
		s.Name, len(s.Groups), len(s.Loops), s.TotalAccesses())

	if *lifetimes {
		fmt.Print(inplace.Report(s))
		return
	}
	if *budget == 0 {
		fatal(fmt.Errorf("-budget is required"))
	}

	var sinks []obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = tf
		sinks = append(sinks, obs.NewJSONL(tf))
	}
	var collector *obs.Collector
	if *stats {
		collector = obs.NewCollector()
		sinks = append(sinks, collector)
	}
	var observer *obs.Observer
	if len(sinks) > 0 {
		observer = obs.New(sinks...)
	}

	ep := core.DefaultEvalParams()
	ep.Obs = observer
	tech := *ep.Tech
	tech.OnChipMaxWords = *threshold
	tech.FramePeriod = *frame
	if *interconnect {
		tech.Bus = tech.WithInterconnect().Bus
	}
	ep.Tech = &tech
	ep.SBD.OnChipMaxWords = *threshold
	ep.Assign.OnChipMaxWords = *threshold
	ep.Assign.InPlace = *inplaceF
	ep.OnChipCount = *onchip

	v, err := core.Evaluate(s, *budget, s.Name, ep)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("budget %d cycles, committed %d (%d spare for the data-path)\n",
		*budget, v.Dist.Used, v.Dist.ExtraCycles())
	fmt.Printf("cost: %.2f mm² on-chip area, %.2f mW on-chip, %.2f mW off-chip\n",
		v.Cost.OnChipArea, v.Cost.OnChipPower, v.Cost.OffChipPower)
	for _, b := range v.Asgn.OnChip {
		fmt.Printf("  %-8s %8d x %2d bit %d-port %8.2f mm² %8.2f mW: %v\n",
			b.Mem.Name, b.Mem.Words, b.Mem.Bits, b.Mem.Ports, b.Area, b.Power, b.Groups)
	}
	for _, b := range v.Asgn.OffChip {
		fmt.Printf("  %-22s %d-port %8.2f mW: %v\n",
			b.Mem.Name, b.Mem.Ports, b.Power, b.Groups)
	}

	if err := observer.Flush(); err != nil {
		fatal(err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "(telemetry trace written to %s)\n", *traceOut)
	}
	if collector != nil {
		fmt.Fprintf(os.Stderr, "\nExploration telemetry:\n%s", obs.StatsTable(collector.Records()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specexplore:", err)
	os.Exit(1)
}
