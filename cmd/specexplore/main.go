// Command specexplore runs the physical memory management stage on a
// pruned specification given as JSON — the designer's entry point for
// applications other than the built-in BTPC demonstrator.
//
// Usage:
//
//	specexplore -budget 20000000 [-onchip 4] [-threshold 65536]
//	            [-frame 1.0] [-timeout 30s] [-inplace] [-interconnect]
//	            [-lifetimes] [-trace out.jsonl] [-stats] [-cache on|off]
//	            [-cache-dir DIR] [-workers N] spec.json
//
// With -cache-dir, a proven-optimal run's output is persisted to an
// append-only log in DIR and identical later invocations replay it
// byte-for-byte without exploring (noted on stderr).
//
// -timeout bounds the exploration: on expiry (or SIGINT/SIGTERM) the stage
// returns its best-effort organization — the branch-and-bound incumbent,
// reported as "not proven optimal" — instead of aborting.
//
// The specification format is documented in internal/spec (see
// TestJSONHandWrittenSpec for a minimal example).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/core"
	"repro/internal/inplace"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validateFlags rejects parameter values that would otherwise produce
// silent nonsense downstream (a zero-memory allocation, a negative
// threshold classifying everything off-chip, a non-positive frame period
// breaking every access rate, a zero-width worker pool).
func validateFlags(onchip int, threshold int64, frame float64, workers int) error {
	if onchip <= 0 {
		return fmt.Errorf("specexplore: -onchip %d out of range (must be >= 1)", onchip)
	}
	if threshold < 0 {
		return fmt.Errorf("specexplore: -threshold %d out of range (must be >= 0)", threshold)
	}
	if frame <= 0 {
		return fmt.Errorf("specexplore: -frame %g out of range (must be > 0)", frame)
	}
	if workers < 1 {
		return fmt.Errorf("specexplore: -workers %d out of range (must be >= 1)", workers)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("specexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.Uint64("budget", 0, "storage cycle budget per frame (required)")
	onchip := fs.Int("onchip", 4, "number of on-chip memories to allocate")
	threshold := fs.Int64("threshold", 64*1024, "words above which a group lives off-chip")
	frame := fs.Float64("frame", 1.0, "frame period in seconds (for access rates)")
	timeout := fs.Duration("timeout", 0, "bound the exploration; on expiry results degrade to best-effort (0 = none)")
	inplaceF := fs.Bool("inplace", false, "enable the in-place mapping extension")
	interconnect := fs.Bool("interconnect", false, "enable the bus interconnect model")
	lifetimes := fs.Bool("lifetimes", false, "print the lifetime analysis and exit")
	traceOut := fs.String("trace", "", "write the exploration telemetry (JSONL spans + counters) to this file")
	stats := fs.Bool("stats", false, "print the per-step telemetry summary to stderr")
	cache := fs.String("cache", "on", "cross-variant evaluation cache: on or off (results are identical either way)")
	cacheDir := fs.String("cache-dir", "", "persist completed results to an append-only log in this directory; identical later runs are answered from it")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool width for the parallel search (results are identical at any width)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := validateFlags(*onchip, *threshold, *frame, *workers); err != nil {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return 2
	}
	if *cache != "on" && *cache != "off" {
		fmt.Fprintf(stderr, "specexplore: -cache %q invalid (want on or off)\n", *cache)
		fs.Usage()
		return 2
	}
	if *timeout < 0 {
		fmt.Fprintf(stderr, "specexplore: -timeout %v out of range (must be >= 0)\n", *timeout)
		fs.Usage()
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "specexplore: expected exactly one spec file, got %d args\n", fs.NArg())
		fs.Usage()
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "specexplore:", err)
		return 1
	}
	defer f.Close()
	s, err := spec.ReadJSON(f)
	if err != nil {
		fmt.Fprintln(stderr, "specexplore:", err)
		return 1
	}

	// Disk result cache: keyed by the canonical spec serialization plus
	// every output-shaping flag, so whitespace or field order in the spec
	// file cannot defeat a hit. Only proven-optimal completed runs are
	// stored; a hit replays their stdout byte-for-byte.
	var disk *memo.DiskTier
	var diskKey string
	var captured *bytes.Buffer
	if *cacheDir != "" {
		var canon bytes.Buffer
		if err := s.WriteJSON(&canon); err != nil {
			fmt.Fprintln(stderr, "specexplore:", err)
			return 1
		}
		d, err := memo.OpenDiskTier(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "specexplore:", err)
			return 1
		}
		defer d.Close()
		disk = d
		diskKey = fmt.Sprintf("specexplore|1|%d|%d|%d|%g|%t|%t|%t|%s",
			*budget, *onchip, *threshold, *frame, *inplaceF, *interconnect, *lifetimes, canon.String())
		if body, ok := disk.Get(memo.Requests, diskKey); ok {
			stdout.Write(body)
			fmt.Fprintf(stderr, "(result served from %s)\n", disk.Path())
			return 0
		}
		captured = &bytes.Buffer{}
		stdout = io.MultiWriter(stdout, captured)
	}

	fmt.Fprintf(stdout, "spec %q: %d basic groups, %d loops, %d accesses/frame\n",
		s.Name, len(s.Groups), len(s.Loops), s.TotalAccesses())

	if *lifetimes {
		fmt.Fprint(stdout, inplace.Report(s))
		return 0
	}
	if *budget == 0 {
		fmt.Fprintln(stderr, "specexplore: -budget is required")
		fs.Usage()
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sinks []obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "specexplore:", err)
			return 1
		}
		traceFile = tf
		sinks = append(sinks, obs.NewJSONL(tf))
	}
	var collector *obs.Collector
	if *stats {
		collector = obs.NewCollector()
		sinks = append(sinks, collector)
	}
	var observer *obs.Observer
	if len(sinks) > 0 {
		observer = obs.New(sinks...)
	}

	ep := core.DefaultEvalParams()
	ep.Obs = observer
	if *cache == "off" {
		ep.Memo = nil
	}
	ep.Workers = pool.New(*workers)
	tech := *ep.Tech
	tech.OnChipMaxWords = *threshold
	tech.FramePeriod = *frame
	if *interconnect {
		tech.Bus = tech.WithInterconnect().Bus
	}
	ep.Tech = &tech
	ep.SBD.OnChipMaxWords = *threshold
	ep.Assign.OnChipMaxWords = *threshold
	ep.Assign.InPlace = *inplaceF
	ep.OnChipCount = *onchip

	v, err := core.EvaluateContext(ctx, s, *budget, s.Name, ep)
	if err != nil {
		fmt.Fprintln(stderr, "specexplore:", err)
		return 1
	}
	if ctx.Err() != nil || !v.Asgn.Optimal {
		fmt.Fprintln(stderr, "specexplore: exploration cut short: organization is best-effort, not proven optimal")
	}
	fmt.Fprintf(stdout, "budget %d cycles, committed %d (%d spare for the data-path)\n",
		*budget, v.Dist.Used, v.Dist.ExtraCycles())
	fmt.Fprintf(stdout, "cost: %.2f mm² on-chip area, %.2f mW on-chip, %.2f mW off-chip\n",
		v.Cost.OnChipArea, v.Cost.OnChipPower, v.Cost.OffChipPower)
	for _, b := range v.Asgn.OnChip {
		fmt.Fprintf(stdout, "  %-8s %8d x %2d bit %d-port %8.2f mm² %8.2f mW: %v\n",
			b.Mem.Name, b.Mem.Words, b.Mem.Bits, b.Mem.Ports, b.Area, b.Power, b.Groups)
	}
	for _, b := range v.Asgn.OffChip {
		fmt.Fprintf(stdout, "  %-22s %d-port %8.2f mW: %v\n",
			b.Mem.Name, b.Mem.Ports, b.Power, b.Groups)
	}

	if err := observer.Flush(); err != nil {
		fmt.Fprintln(stderr, "specexplore:", err)
		return 1
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(stderr, "specexplore:", err)
			return 1
		}
		fmt.Fprintf(stderr, "(telemetry trace written to %s)\n", *traceOut)
	}
	if collector != nil {
		fmt.Fprintf(stderr, "\nExploration telemetry:\n%s", obs.StatsTable(collector.Records()))
		fmt.Fprintf(stderr, "\nStage latency histograms:\n%s", obs.HistTable(observer.Snapshot()))
	}
	if *stats {
		fmt.Fprintf(stderr, "\nEvaluation cache (-cache=%s):\n%s", *cache, ep.Memo.StatsString())
	}
	if disk != nil && ctx.Err() == nil && v.Asgn.Optimal {
		disk.Put(memo.Requests, diskKey, captured.Bytes())
		if err := disk.Close(); err != nil { // flush write-behind before exit
			fmt.Fprintln(stderr, "specexplore:", err)
		}
	}
	return 0
}
