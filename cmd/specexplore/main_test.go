package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSpecJSON = `{
  "name": "hand",
  "groups": [{"name": "buf", "words": 1024, "bits": 12}],
  "loops": [
    {"name": "main", "iterations": 5000, "accesses": [
      {"group": "buf", "count": 2},
      {"group": "buf", "write": true, "count": 1, "deps": [0]}
    ]}
  ]
}`

func writeSpec(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, []byte(testSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name      string
		onchip    int
		threshold int64
		frame     float64
		workers   int
		wantErr   bool
	}{
		{"defaults", 4, 64 * 1024, 1.0, 1, false},
		{"one memory, zero threshold", 1, 0, 0.001, 8, false},
		{"zero onchip", 0, 1024, 1.0, 1, true},
		{"negative onchip", -3, 1024, 1.0, 1, true},
		{"negative threshold", 4, -1, 1.0, 1, true},
		{"zero frame", 4, 1024, 0, 1, true},
		{"negative frame", 4, 1024, -2.5, 1, true},
		{"zero workers", 4, 1024, 1.0, 0, true},
		{"negative workers", 4, 1024, 1.0, -2, true},
	}
	for _, c := range cases {
		err := validateFlags(c.onchip, c.threshold, c.frame, c.workers)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestRunExploresSpec is the end-to-end happy path: a JSON spec on disk is
// explored and the organization summary lands on stdout with exit 0.
func TestRunExploresSpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-budget", "50000", writeSpec(t)}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{`spec "hand"`, "1 basic groups", "budget 50000 cycles", "cost:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(stderr.String(), "best-effort") {
		t.Fatalf("unconstrained run reported best-effort: %s", stderr.String())
	}
}

// TestRunTimeoutBestEffort: an immediately-expiring -timeout still exits 0
// with a valid organization, flagged best-effort on stderr.
func TestRunTimeoutBestEffort(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-budget", "50000", "-timeout", "1ns", writeSpec(t)}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "best-effort, not proven optimal") {
		t.Fatalf("stderr missing best-effort note: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "cost:") {
		t.Fatalf("degraded run printed no organization:\n%s", stdout.String())
	}
}

// TestRunLifetimes: -lifetimes prints the analysis and skips exploration,
// so no -budget is needed.
func TestRunLifetimes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-lifetimes", writeSpec(t)}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("no lifetime report")
	}
}

// TestRunUsageErrors: every invalid invocation must exit 2 with a usage
// message, before any exploration work happens.
func TestRunUsageErrors(t *testing.T) {
	sp := writeSpec(t)
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-nosuchflag", sp}},
		{"zero onchip", []string{"-budget", "50000", "-onchip", "0", sp}},
		{"negative onchip", []string{"-budget", "50000", "-onchip", "-2", sp}},
		{"negative threshold", []string{"-budget", "50000", "-threshold", "-1", sp}},
		{"zero frame", []string{"-budget", "50000", "-frame", "0", sp}},
		{"negative frame", []string{"-budget", "50000", "-frame", "-1.5", sp}},
		{"zero workers", []string{"-budget", "50000", "-workers", "0", sp}},
		{"negative workers", []string{"-budget", "50000", "-workers", "-8", sp}},
		{"negative timeout", []string{"-budget", "50000", "-timeout", "-1s", sp}},
		{"no spec file", []string{"-budget", "50000"}},
		{"two spec files", []string{"-budget", "50000", sp, sp}},
		{"missing budget", []string{sp}},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", c.name, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("%s: no usage message on stderr", c.name)
		}
	}
}

// TestRunMissingFile: a nonexistent spec path is a runtime error (exit 1),
// not a usage error.
func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-budget", "50000", filepath.Join(t.TempDir(), "nope.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
