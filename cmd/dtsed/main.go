// Command dtsed is the exploration-as-a-service daemon: a long-running
// HTTP server that owns one exploration session (shared cross-variant
// evaluation cache, shared bounded worker pool, shared telemetry) and
// answers exploration requests against it.
//
// Usage:
//
//	dtsed [-addr 127.0.0.1:8321] [-concurrency N] [-queue N]
//	      [-timeout 0] [-max-timeout 0] [-workers N] [-drain 5s]
//	      [-trace out.jsonl] [-cache on|off] [-cache-dir DIR]
//	      [-cache-bytes N] [-warm on|off] [-flight N] [-slow 0]
//	      [-cluster on|off] [-self URL] [-peers URL,URL,...] [-join URL,...]
//	      [-hedge-ms N] [-gossip 1s] [-suspicion 10s]
//
// With -cluster on (requires -self, this node's advertised base URL, plus
// -peers and/or -join) the daemon joins a multi-node ring: any node
// accepts any request, routes it to the consistent-hash owner of its
// canonical fingerprint (so each node's caches and warm index stay hot for
// its shard), hedges to the next ring node when the owner is slower than
// its p99 (-hedge-ms floors the delay), ejects unhealthy peers, shares
// branch-and-bound incumbents best-effort, and distributes large subtree
// searches. Responses are byte-identical at any node count.
//
// Membership is dynamic: -join URLs are seed nodes handshaked once the
// listener is up — the seed's digest supplies the rest of the member set,
// so a joining node needs one reachable seed, not the full -peers list.
// Every -gossip interval the daemon exchanges membership digests with its
// peers; an unreachable member is suspected and removed after -suspicion,
// while incarnation numbers let a live member refute stale claims about
// itself. On any ring change the node streams the cached records and
// warm-index seeds it no longer owns to their new owner
// (/v1/internal/handoff), so rebalanced shards start hot. On shutdown the
// daemon announces its departure and hands its shard over before draining.
//
// With -cache-dir the daemon keeps a disk-backed second cache tier: every
// completed response is appended (write-behind, checksummed) to
// DIR/cache.log and survives restarts — a fresh process answers previously
// seen requests byte-identically from disk and re-seeds its warm-start
// index from the recovered organizations. -cache-bytes caps each in-memory
// keyspace, evicting cold entries CLOCK-wise; the disk tier still holds
// everything appended.
//
// Endpoints:
//
//	POST /v1/explore  {"spec": {...}, "budget": N, "timeout_ms": N,
//	                   "params": {...}}  or  {"demo": {"size": N, ...}};
//	                  with Accept: text/event-stream the exploration is
//	                  streamed as SSE progress events (GET with ?request=
//	                  serves EventSource clients)
//	POST /v1/explore/batch  {"items": [<explore request>, ...]}: up to 64
//	                  explore requests under one admission slot, sharing the
//	                  session cache and worker pool; the response carries a
//	                  per-item status/degraded/trace-id/body array
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     Prometheus text exposition (request/stage latency
//	                  histograms, counters, per-keyspace cache stats);
//	                  JSON with Accept: application/json
//	GET  /metrics.json          the JSON metrics snapshot
//	GET  /debug/explorations    in-flight requests: stage, nodes, bound gap
//	GET  /debug/flightrecorder  last -flight slow/degraded/errored requests
//	                  with their span trees and counter deltas
//
// Explorations are anytime: a request whose deadline (-timeout, or its own
// timeout_ms) expires gets its best-effort organization, flagged
// optimal=false / degraded=true, instead of an error. Identical requests
// are deduplicated through the session cache — concurrent duplicates share
// one exploration — and degraded responses are never cached.
//
// On SIGINT/SIGTERM the daemon drains: health turns 503, new explorations
// are refused, and in-flight ones run to completion. After -drain the
// remaining explorations are degraded to their anytime results and the
// responses still complete.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/memo"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dtsed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	concurrency := fs.Int("concurrency", runtime.GOMAXPROCS(0), "explorations running at once")
	queue := fs.Int("queue", 0, "requests waiting for a slot before 429 (0 = 2x concurrency)")
	timeout := fs.Duration("timeout", 0, "default per-request exploration deadline (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on request-supplied deadlines (0 = none)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool width shared by all explorations")
	drain := fs.Duration("drain", 5*time.Second, "shutdown grace before in-flight explorations are degraded")
	traceOut := fs.String("trace", "", "write the exploration telemetry (JSONL spans + counters) to this file")
	cache := fs.String("cache", "on", "session cache: on or off (responses are identical either way)")
	cacheDir := fs.String("cache-dir", "", "persist completed responses to an append-only log in this directory (disk cache tier, survives restarts)")
	cacheBytes := fs.Int64("cache-bytes", 0, "byte cap per session-cache keyspace, evicting beyond it (0 = unbounded)")
	warm := fs.String("warm", "on", "warm-start search from cached neighbour assignments: on or off (completed results are identical either way)")
	flight := fs.Int("flight", 64, "flight-recorder capacity: last N slow/degraded/errored requests (-1 disables)")
	slow := fs.Duration("slow", 0, "flight-record healthy requests at least this slow (0 = off)")
	clusterMode := fs.String("cluster", "off", "cluster mode: on or off (requires -self and -peers)")
	self := fs.String("self", "", "this node's advertised base URL in cluster mode, e.g. http://10.0.0.1:8321")
	peers := fs.String("peers", "", "comma-separated peer base URLs (static members known at startup)")
	join := fs.String("join", "", "comma-separated seed URLs to handshake for dynamic membership (alternative or addition to -peers)")
	hedgeMS := fs.Int("hedge-ms", 0, "hedge-delay floor in milliseconds for forwarded requests (0 = default 50)")
	gossip := fs.Duration("gossip", 0, "membership gossip/probe interval (0 = default 1s)")
	suspicion := fs.Duration("suspicion", 0, "how long an unreachable member stays suspect before removal (0 = default 10s)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cache != "on" && *cache != "off" {
		fmt.Fprintf(stderr, "dtsed: -cache %q invalid (want on or off)\n", *cache)
		fs.Usage()
		return 2
	}
	if *warm != "on" && *warm != "off" {
		fmt.Fprintf(stderr, "dtsed: -warm %q invalid (want on or off)\n", *warm)
		fs.Usage()
		return 2
	}
	if *cacheBytes < 0 {
		fmt.Fprintln(stderr, "dtsed: -cache-bytes must be >= 0")
		fs.Usage()
		return 2
	}
	if *concurrency < 1 || *workers < 1 {
		fmt.Fprintln(stderr, "dtsed: -concurrency and -workers must be >= 1")
		fs.Usage()
		return 2
	}
	if *timeout < 0 || *maxTimeout < 0 || *drain < 0 || *queue < 0 || *slow < 0 {
		fmt.Fprintln(stderr, "dtsed: durations and -queue must be >= 0")
		fs.Usage()
		return 2
	}
	if *clusterMode != "on" && *clusterMode != "off" {
		fmt.Fprintf(stderr, "dtsed: -cluster %q invalid (want on or off)\n", *clusterMode)
		fs.Usage()
		return 2
	}
	if *hedgeMS < 0 {
		fmt.Fprintln(stderr, "dtsed: -hedge-ms must be >= 0")
		fs.Usage()
		return 2
	}
	if *gossip < 0 || *suspicion < 0 {
		fmt.Fprintln(stderr, "dtsed: -gossip and -suspicion must be >= 0")
		fs.Usage()
		return 2
	}
	splitURLs := func(csv string) []string {
		var out []string
		for _, p := range strings.Split(csv, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	var peerList, seedList []string
	if *clusterMode == "on" {
		if *self == "" {
			fmt.Fprintln(stderr, "dtsed: -cluster on requires -self")
			fs.Usage()
			return 2
		}
		peerList = splitURLs(*peers)
		seedList = splitURLs(*join)
		if len(peerList) == 0 && len(seedList) == 0 {
			fmt.Fprintln(stderr, "dtsed: -cluster on requires at least one URL in -peers or -join")
			fs.Usage()
			return 2
		}
	} else if *self != "" || *peers != "" || *join != "" {
		fmt.Fprintln(stderr, "dtsed: -self, -peers, and -join require -cluster on")
		fs.Usage()
		return 2
	}

	var sinks []obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "dtsed:", err)
			return 1
		}
		traceFile = f
		sinks = append(sinks, obs.NewJSONL(f))
	}
	observer := obs.New(sinks...) // always on: /metrics serves its snapshot

	var disk *memo.DiskTier
	if *cacheDir != "" {
		d, err := memo.OpenDiskTier(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "dtsed:", err)
			return 1
		}
		disk = d
		st := d.Stats()
		fmt.Fprintf(stdout, "dtsed: disk cache %s (%d record(s) recovered)\n", d.Path(), st.Records)
	}

	srv := dtse.NewServer(dtse.ServeOptions{
		MaxConcurrent:  *concurrency,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		Obs:            observer,
		NoCache:        *cache == "off",
		CacheBytes:     *cacheBytes,
		Disk:           disk,
		NoWarmStart:    *warm == "off",
		FlightRecorder: *flight,
		SlowRequest:    *slow,
	})
	if *clusterMode == "on" {
		if err := srv.JoinCluster(dtse.ClusterOptions{
			Self:             *self,
			Peers:            peerList,
			Seeds:            seedList,
			HedgeDelay:       time.Duration(*hedgeMS) * time.Millisecond,
			GossipInterval:   *gossip,
			SuspicionTimeout: *suspicion,
		}); err != nil {
			fmt.Fprintln(stderr, "dtsed:", err)
			return 1
		}
		fmt.Fprintf(stdout, "dtsed: cluster mode, self %s, %d peer(s), %d seed(s)\n", *self, len(peerList), len(seedList))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "dtsed:", err)
		return 1
	}
	fmt.Fprintf(stdout, "dtsed: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Seed handshake only after the listener is up, so the seeds (and the
	// gossip that follows) can reach us for digests and shard handoff.
	if len(seedList) > 0 {
		joinCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := srv.JoinSeeds(joinCtx, seedList)
		cancel()
		if err != nil {
			fmt.Fprintln(stderr, "dtsed:", err)
		} else {
			fmt.Fprintf(stdout, "dtsed: joined via seed(s)\n")
		}
	}

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "dtsed:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown. In cluster mode, first announce the departure and
	// hand our shard's cached records to their new owners — peers re-route
	// while we are still serving. Then stop routing (healthz 503, new
	// explorations refused), wait up to -drain for in-flight explorations,
	// and degrade the stragglers to their anytime results — every accepted
	// request still gets a complete response.
	if *clusterMode == "on" {
		leaveCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.LeaveCluster(leaveCtx); err != nil {
			fmt.Fprintln(stderr, "dtsed: leave:", err)
		} else {
			fmt.Fprintln(stderr, "dtsed: announced departure, shard handed off")
		}
		cancel()
	}
	srv.BeginDrain()
	fmt.Fprintf(stderr, "dtsed: draining (%d exploration(s) in flight)\n", srv.Inflight())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	err = httpSrv.Shutdown(shutCtx)
	cancel()
	if err != nil {
		fmt.Fprintln(stderr, "dtsed: drain deadline hit, degrading in-flight explorations")
		srv.Abort()
		// Anytime semantics bound this second wait: every exploration
		// returns promptly once its context dies.
		if err := httpSrv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "dtsed:", err)
		}
	}

	// Flush the write-behind queue before exiting: everything computed by a
	// cleanly drained daemon is durable for the next start.
	if err := disk.Close(); err != nil {
		fmt.Fprintln(stderr, "dtsed: disk cache close:", err)
	}
	if err := observer.Flush(); err != nil {
		fmt.Fprintln(stderr, "dtsed: telemetry flush:", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(stderr, "dtsed:", err)
			return 1
		}
		fmt.Fprintf(stderr, "(telemetry trace written to %s)\n", *traceOut)
	}
	fmt.Fprintln(stdout, "dtsed: shut down cleanly")
	return 0
}
