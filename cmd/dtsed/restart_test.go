package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/memo"
)

// diskMetrics fetches the /metrics.json snapshot fields the restart tests
// assert on.
type diskMetrics struct {
	Memo map[string]memo.Stats `json:"memo"`
	Disk *memo.DiskStats       `json:"disk"`
}

func getDiskMetrics(t *testing.T, url string) diskMetrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m diskMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitDiskWrites polls until the disk tier has durably appended at least
// want records (writes are write-behind; the hot path does not wait).
func waitDiskWrites(t *testing.T, url string, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := getDiskMetrics(t, url); m.Disk != nil && m.Disk.Writes >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("disk tier never recorded %d write(s)", want)
}

// TestDaemonRestartServesFromDiskTier is the restart e2e of the persistent
// cache tier: daemon one computes a response and drains cleanly; daemon two
// on the same -cache-dir answers the identical request byte-identically
// from the disk tier — visible as a requests-keyspace DiskHits count, not a
// recompute.
func TestDaemonRestartServesFromDiskTier(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"spec": %s, "budget": 20000}`, testSpecJSON)

	url1, shutdown1, exit1, out1 := startDaemon(t, "-cache-dir", dir, "-drain", "5s")
	status, first := post(t, url1, body)
	if status != http.StatusOK {
		t.Fatalf("populate: status %d: %s", status, first)
	}
	waitDiskWrites(t, url1, 1)
	shutdown1()
	select {
	case code := <-exit1:
		if code != 0 {
			t.Fatalf("first daemon exited %d:\n%s", code, out1.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("first daemon never exited:\n%s", out1.String())
	}

	url2, shutdown2, exit2, out2 := startDaemon(t, "-cache-dir", dir, "-drain", "5s")
	defer func() {
		shutdown2()
		select {
		case <-exit2:
		case <-time.After(60 * time.Second):
			t.Fatalf("second daemon never exited:\n%s", out2.String())
		}
	}()
	if !strings.Contains(out2.String(), "disk cache") {
		t.Fatalf("second daemon did not announce the disk cache:\n%s", out2.String())
	}
	m := getDiskMetrics(t, url2)
	if m.Disk == nil || m.Disk.Replayed < 1 {
		t.Fatalf("second daemon replayed no records: %+v", m.Disk)
	}

	status, second := post(t, url2, body)
	if status != http.StatusOK {
		t.Fatalf("replay request: status %d: %s", status, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("restarted daemon served different bytes\nfirst:  %s\nsecond: %s", first, second)
	}
	m = getDiskMetrics(t, url2)
	req := m.Memo["requests"]
	if req.DiskHits < 1 {
		t.Fatalf("identical request after restart was not a disk-tier hit: %+v", req)
	}
	if req.Misses < 1 {
		t.Fatalf("request should miss the (empty) memory tier before hitting disk: %+v", req)
	}
}

// TestDaemonKill9Recovery is the crash e2e: a real dtsed subprocess is
// SIGKILLed with a populated cache log, the log is additionally torn
// mid-record (what a kill during an append leaves), and a fresh daemon on
// the same directory must recover the intact records and serve the request
// byte-identically from disk.
func TestDaemonKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(t.TempDir(), "dtsed")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache-dir", dir)
	var out syncBuffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var url string
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			url = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subprocess never started listening:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := fmt.Sprintf(`{"spec": %s, "budget": 20000}`, testSpecJSON)
	status, first := post(t, url, body)
	if status != http.StatusOK {
		t.Fatalf("populate: status %d: %s", status, first)
	}
	waitDiskWrites(t, url, 1)

	// kill -9: no drain, no writer flush, no Close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// Tear the log the way a kill mid-append would: a header promising more
	// payload than was written.
	f, err := os.OpenFile(filepath.Join(dir, "cache.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	url2, shutdown2, exit2, out2 := startDaemon(t, "-cache-dir", dir, "-drain", "5s")
	defer func() {
		shutdown2()
		select {
		case <-exit2:
		case <-time.After(60 * time.Second):
			t.Fatalf("recovery daemon never exited:\n%s", out2.String())
		}
	}()
	m := getDiskMetrics(t, url2)
	if m.Disk == nil || m.Disk.Replayed < 1 {
		t.Fatalf("recovery daemon replayed no records: %+v", m.Disk)
	}
	if m.Disk.Truncated == 0 {
		t.Fatalf("torn tail was not truncated: %+v", m.Disk)
	}
	status, second := post(t, url2, body)
	if status != http.StatusOK {
		t.Fatalf("post-crash request: status %d: %s", status, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("post-crash daemon served different bytes\nfirst:  %s\nsecond: %s", first, second)
	}
	if req := getDiskMetrics(t, url2).Memo["requests"]; req.DiskHits < 1 {
		t.Fatalf("post-crash request was not a disk-tier hit: %+v", req)
	}
}
