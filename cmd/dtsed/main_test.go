package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

const testSpecJSON = `{
  "name": "hand",
  "groups": [{"name": "buf", "words": 1024, "bits": 12}],
  "loops": [
    {"name": "main", "iterations": 5000, "accesses": [
      {"group": "buf", "count": 2},
      {"group": "buf", "write": true, "count": 1, "deps": [0]}
    ]}
  ]
}`

// syncBuffer lets the test read the daemon's output while run is still
// writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a shutdown func (cancels the signal context, as SIGTERM would), and
// the channel delivering run's exit code.
func startDaemon(t *testing.T, args ...string) (url string, shutdown func(), exit chan int, out *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncBuffer{}
	exit = make(chan int, 1)
	go func() {
		exit <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], cancel, exit, out
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d:\n%s", code, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never started listening:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestRunBadFlags: flag validation exits 2 without starting a server.
func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-cache", "maybe"},
		{"-concurrency", "0"},
		{"-workers", "-1"},
		{"-timeout", "-1s"},
		{"-drain", "-1s"},
		{"-queue", "-1"},
		{"-slow", "-1s"},
		{"-cluster", "on"},                        // no -self
		{"-cluster", "on", "-self", "http://x:1"}, // no -peers or -join
		{"-join", "http://x:1"},                   // -join without -cluster on
		{"-cluster", "on", "-self", "http://x:1", "-gossip", "-1s"},
		{"-nonsense"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if code := run(context.Background(), args, &out, &out); code != 2 {
			t.Errorf("args %v: exit %d, want 2\n%s", args, code, out.String())
		}
	}
}

// TestDaemonEndToEnd drives one daemon instance through the whole serving
// surface: health, malformed requests, a real exploration, per-request
// deadlines, metrics, overload, and a draining shutdown.
func TestDaemonEndToEnd(t *testing.T) {
	url, shutdown, exit, out := startDaemon(t, "-concurrency", "1", "-queue", "1", "-drain", "300ms")

	// Health.
	resp, err := http.Get(url + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}

	// Malformed spec → 400 with an error body.
	status, body := post(t, url, `{"spec": "not an object", "budget": 5}`)
	if status != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d: %s", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("malformed-spec error body unreadable: %s", body)
	}

	// Happy path: a spec exploration.
	status, body = post(t, url, fmt.Sprintf(`{"spec": %s, "budget": 20000}`, testSpecJSON))
	if status != http.StatusOK {
		t.Fatalf("explore: status %d: %s", status, body)
	}
	var env struct {
		Variant struct {
			Label   string `json:"label"`
			Optimal bool   `json:"optimal"`
			Cost    struct {
				TotalPowerMW float64 `json:"total_power_mw"`
			} `json:"cost"`
		} `json:"variant"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("explore response: %v\n%s", err, body)
	}
	if env.Variant.Label != "hand" || !env.Variant.Optimal || env.Variant.Cost.TotalPowerMW <= 0 {
		t.Fatalf("explore response wrong: %+v", env.Variant)
	}

	// Per-request deadline: a 1ms demo exploration still answers 200, but
	// best-effort; it must return promptly, not after a full exploration.
	begin := time.Now()
	status, body = post(t, url, `{"demo": {"size": 64}, "timeout_ms": 1}`)
	if status != http.StatusOK {
		t.Fatalf("deadline request: status %d: %s", status, body)
	}
	if el := time.Since(begin); el > 30*time.Second {
		t.Fatalf("1ms-deadline request took %v", el)
	}
	var denv struct {
		Results struct {
			Final struct {
				Optimal  bool `json:"optimal"`
				Degraded bool `json:"degraded"`
			} `json:"final"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &denv); err != nil {
		t.Fatalf("deadline response: %v\n%s", err, body)
	}
	if denv.Results.Final.Optimal && !denv.Results.Final.Degraded {
		t.Fatal("1ms deadline returned a proven-optimal, non-degraded result")
	}

	// Metrics reflect the traffic so far.
	resp, err = http.Get(url + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Server struct {
			Requests     int64 `json:"requests_total"`
			LatencyCount int64 `json:"latency_count"`
			LatencyP50US int64 `json:"latency_p50_us"`
			LatencyP99US int64 `json:"latency_p99_us"`
		} `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Server.Requests < 3 || m.Server.LatencyCount < 3 || m.Server.LatencyP99US < m.Server.LatencyP50US {
		t.Fatalf("metrics wrong: %+v", m.Server)
	}

	// The default /metrics view is the Prometheus text exposition, covering
	// the request-latency and per-stage histograms.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE dtse_request_duration_seconds histogram",
		"dtse_request_duration_seconds_count",
		"dtse_stage_duration_seconds_bucket",
		"dtse_http_requests_total",
		"dtse_memo_hits_total",
	} {
		if !strings.Contains(string(promText), want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, promText)
		}
	}

	// The 1ms-deadline request degraded, so the flight recorder holds it,
	// span tree and all — a degraded request is reconstructable after the
	// fact.
	resp, err = http.Get(url + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	var flights struct {
		Capacity int   `json:"capacity"`
		Recorded int64 `json:"recorded_total"`
		Entries  []struct {
			TraceID string `json:"trace_id"`
			Reason  string `json:"reason"`
			Status  int    `json:"status"`
			Mode    string `json:"mode"`
			Search  struct {
				Stage string `json:"stage"`
			} `json:"search"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"entries"`
	}
	err = json.NewDecoder(resp.Body).Decode(&flights)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if flights.Capacity != 64 || flights.Recorded < 1 || len(flights.Entries) < 1 {
		t.Fatalf("flight recorder empty after the degraded request: %+v", flights)
	}
	fe := flights.Entries[0]
	if fe.Reason != "degraded" || fe.Status != http.StatusOK || fe.TraceID == "" || fe.Mode != "demo" {
		t.Fatalf("flight entry wrong: %+v", fe)
	}
	if len(fe.Spans) == 0 || fe.Search.Stage == "" {
		t.Fatalf("flight entry not reconstructable (spans=%d, stage=%q)", len(fe.Spans), fe.Search.Stage)
	}

	// The live-exploration registry answers (idle right now).
	resp, err = http.Get(url + "/debug/explorations")
	if err != nil {
		t.Fatal(err)
	}
	var livelist struct {
		Count int `json:"count"`
	}
	err = json.NewDecoder(resp.Body).Decode(&livelist)
	resp.Body.Close()
	if err != nil || livelist.Count != 0 {
		t.Fatalf("/debug/explorations: err=%v count=%d", err, livelist.Count)
	}

	// Overload: with -concurrency 1 -queue 1, a slow exploration plus a
	// queued one exhaust admission; the third gets 429 + Retry-After.
	type slowResult struct {
		status int
		body   []byte
	}
	slow := make(chan slowResult, 2)
	launch := func(seed int) {
		resp, err := http.Post(url+"/v1/explore", "application/json",
			strings.NewReader(fmt.Sprintf(`{"demo": {"size": 256, "seed": %d}}`, seed)))
		if err != nil {
			slow <- slowResult{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		slow <- slowResult{resp.StatusCode, b}
	}
	go launch(11)
	waitGauge(t, url, "inflight", 1)
	go launch(12)
	waitGauge(t, url, "queued", 1)
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/explore", strings.NewReader(`{"demo": {"size": 256, "seed": 13}}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	overflowed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d, want 429: %s", resp.StatusCode, overflowed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Graceful shutdown while the two slow explorations are still going:
	// after the drain grace they are degraded, their responses complete,
	// and the daemon exits 0.
	shutdown()
	for i := 0; i < 2; i++ {
		select {
		case r := <-slow:
			// The running exploration completes 200 (degraded); one that
			// was still queued when the drain escalated may be refused.
			if r.status != http.StatusOK && r.status != http.StatusTooManyRequests {
				t.Fatalf("in-flight request during drain: status %d: %s", r.status, r.body)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("in-flight exploration never completed during drain")
		}
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d:\n%s", code, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never exited:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("no clean-shutdown message:\n%s", out.String())
	}
}

// waitGauge polls /metrics.json until the named server gauge reaches want.
func waitGauge(t *testing.T, url, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		var m struct {
			Server map[string]any `json:"server"`
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := m.Server[name].(float64); ok && int64(v) >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("gauge %s never reached %d", name, want)
}
