package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the daemon to
// bind. The tiny race (another process grabbing it in between) is the
// standard test tradeoff for daemons that must know their own address.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func waitForMetric(t *testing.T, url, pattern string, timeout time.Duration) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(timeout)
	for {
		if re.MatchString(scrapeMetrics(t, url)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %q never appeared at %s:\n%s", pattern, url, scrapeMetrics(t, url))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestDaemonDynamicJoinAndLeave boots a two-node cluster, joins a third
// node mid-run via -join (seed handshake), checks the ring converges on
// every node and that the joiner answers byte-identically, then shuts the
// joiner down gracefully and checks the survivors see the departure.
func TestDaemonDynamicJoinAndLeave(t *testing.T) {
	portA, portB, portC := freePort(t), freePort(t), freePort(t)
	urlOf := func(p int) string { return fmt.Sprintf("http://127.0.0.1:%d", p) }
	urlA, urlB, urlC := urlOf(portA), urlOf(portB), urlOf(portC)

	common := []string{"-gossip", "100ms", "-suspicion", "5s", "-drain", "2s"}
	_, stopA, exitA, _ := startDaemon(t, append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", portA),
		"-cluster", "on", "-self", urlA, "-peers", urlB}, common...)...)
	_, stopB, exitB, _ := startDaemon(t, append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", portB),
		"-cluster", "on", "-self", urlB, "-peers", urlA}, common...)...)
	defer func() {
		stopA()
		stopB()
		<-exitA
		<-exitB
	}()
	waitForMetric(t, urlA, `dtse_cluster_members 2`, 10*time.Second)
	waitForMetric(t, urlB, `dtse_cluster_members 2`, 10*time.Second)

	// A baseline exploration before the topology changes.
	body := fmt.Sprintf(`{"spec": %s, "budget": 20000}`, testSpecJSON)
	status, ref := post(t, urlA, body)
	if status != http.StatusOK {
		t.Fatalf("baseline explore: status %d: %s", status, ref)
	}

	// Third node joins mid-run knowing only seed A.
	_, stopC, exitC, _ := startDaemon(t, append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", portC),
		"-cluster", "on", "-self", urlC, "-join", urlA}, common...)...)
	for _, u := range []string{urlA, urlB, urlC} {
		waitForMetric(t, u, `dtse_cluster_members 3`, 15*time.Second)
	}

	// The joiner serves the same request byte-identically (routed or
	// local, cached or recomputed — the contract is the bytes).
	status, got := post(t, urlC, body)
	if status != http.StatusOK {
		t.Fatalf("explore via joiner: status %d: %s", status, got)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("joiner answered differently:\nref: %s\ngot: %s", ref, got)
	}

	// Graceful leave: C announces on shutdown; survivors drop to 2 members
	// without waiting out any suspicion timeout.
	stopC()
	if code := <-exitC; code != 0 {
		t.Fatalf("joiner exited %d", code)
	}
	waitForMetric(t, urlA, `dtse_cluster_members 2`, 10*time.Second)
	waitForMetric(t, urlB, `dtse_cluster_members 2`, 10*time.Second)
	if !regexp.MustCompile(`dtse_cluster_leaves_total [1-9]`).MatchString(scrapeMetrics(t, urlA) + scrapeMetrics(t, urlB)) {
		// The goodbye digest is merged via the gossip endpoint on A and B;
		// the leave counter lives on the departing node, so survivors show
		// member_leaves instead.
		waitForMetric(t, urlA, `dtse_cluster_member_leaves_total [1-9]`, 5*time.Second)
	}
}
