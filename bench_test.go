// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates its experiment with the
// real pipeline and reports the headline cost figures as custom metrics;
// run with -v (or see bench_output.txt) to get the full regenerated rows.
//
//	go test -bench=. -benchmem
package dtse

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sbd"
)

// benchSize is the demonstrator scale used by the benchmark harness. The
// paper's constraint size is 1024; the full run takes a few seconds.
const benchSize = 1024

var (
	benchOnce sync.Once
	benchDemo *core.Demonstrator
	benchRes  *core.Results
	benchErr  error
	printOnce sync.Once
)

func benchFixture(b *testing.B) (*core.Demonstrator, *core.Results) {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = core.RunAll(core.DemoConfig{Size: benchSize}, core.DefaultEvalParams())
		if benchErr == nil {
			benchDemo = benchRes.Demo
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDemo, benchRes
}

// printTables emits the regenerated tables once per bench run so that
// bench_output.txt records the paper-versus-measured rows.
func printTables(r *core.Results) {
	printOnce.Do(func() {
		fmt.Println(r.Table1().Render())
		fmt.Println(r.Table2().Render())
		fmt.Println(r.Table3().Render())
		fmt.Println(r.Table4().Render())
		fmt.Println("Figure 1:\n" + r.Figure1())
		fmt.Println("Figure 2:\n" + r.Figure2())
		fmt.Println("Figure 3:\n" + r.Figure3())
	})
}

// BenchmarkTable1BasicGroupStructuring regenerates Table 1: the three basic
// group structuring alternatives evaluated through the full physical memory
// management stage.
func BenchmarkTable1BasicGroupStructuring(b *testing.B) {
	demo, res := benchFixture(b)
	printTables(res)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, err := core.ExploreStructuring(demo, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(vs[0].Cost.OffChipPower, "none-offchip-mW")
			b.ReportMetric(vs[2].Cost.OffChipPower, "merged-offchip-mW")
		}
	}
}

// BenchmarkTable2MemoryHierarchy regenerates Table 2: the four image-array
// hierarchy alternatives.
func BenchmarkTable2MemoryHierarchy(b *testing.B) {
	demo, res := benchFixture(b)
	printTables(res)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, _, err := core.ExploreHierarchy(res.StructChoice.Spec, demo, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(vs[0].Cost.OffChipPower, "nohier-offchip-mW")
			b.ReportMetric(vs[2].Cost.TotalPower(), "ylocal-total-mW")
		}
	}
}

// BenchmarkTable3CycleBudgets regenerates Table 3: the storage cycle budget
// sweep with its whole-loop-quantum jumps.
func BenchmarkTable3CycleBudgets(b *testing.B) {
	demo, res := benchFixture(b)
	printTables(res)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.ExploreBudgets(res.HierChoice.Spec, demo.CycleBudget, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := pts[len(pts)-1]
			b.ReportMetric(float64(last.Extra)/float64(demo.CycleBudget)*100, "max-extra-%")
			b.ReportMetric(last.Cost.OnChipPower, "tightest-onchip-mW")
		}
	}
}

// BenchmarkTable4MemoryAllocations regenerates Table 4: the allocation
// sweep over 4/5/8/10/14 on-chip memories.
func BenchmarkTable4MemoryAllocations(b *testing.B) {
	_, res := benchFixture(b)
	printTables(res)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	counts := []int{4, 5, 8, 10, 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, _, err := core.ExploreAllocations(res.BudgetChoice.Spec, res.BudgetChoice.Dist, counts, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(vs[0].Cost.OnChipPower, "4mem-onchip-mW")
			b.ReportMetric(vs[len(vs)-1].Cost.OnChipPower, "14mem-onchip-mW")
		}
	}
}

// BenchmarkFigure1ExplorationTree regenerates Figure 1: the stepwise
// refinement tree with the options explored per stage.
func BenchmarkFigure1ExplorationTree(b *testing.B) {
	_, res := benchFixture(b)
	printTables(res)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(res.Figure1())
	}
	b.ReportMetric(float64(n), "render-bytes")
}

// BenchmarkFigure2Structuring regenerates Figure 2: the compaction and
// merging transforms applied to the profiled specification.
func BenchmarkFigure2Structuring(b *testing.B) {
	demo, res := benchFixture(b)
	printTables(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Compact(demo.Spec, "ridge", 3)
		if err != nil {
			b.Fatal(err)
		}
		m, err := Merge(demo.Spec, "ridge", "pyr", "pyrridge")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(demo.Spec.TotalAccesses()-c.TotalAccesses()), "compact-saved")
			b.ReportMetric(float64(demo.Spec.TotalAccesses()-m.TotalAccesses()), "merge-saved")
		}
	}
}

// BenchmarkFigure3Hierarchy regenerates Figure 3: the trace-driven reuse
// analysis and layer planning for the image array.
func BenchmarkFigure3Hierarchy(b *testing.B) {
	demo, res := benchFixture(b)
	printTables(res)
	ylocal, yhier := core.HierarchyLayers(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := PlanHierarchy("image", []Layer{ylocal, yhier}, demo.ImageProfile)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(h.MissRatios[0]*100, "ylocal-miss-%")
			b.ReportMetric(h.MissRatios[1]*100, "yhier-miss-%")
		}
	}
}

// BenchmarkProfileDemonstrator measures the §4.1 profiling step itself:
// instrumented encode of the full-size image plus reuse analysis.
func BenchmarkProfileDemonstrator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildDemonstrator(core.DemoConfig{Size: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Pipelined regenerates the Table 3 extension: with software
// pipelining the budget sweep continues below the dependence critical path,
// and the off-chip organization becomes more expensive at the tightest
// initiation intervals — the paper's 98.1 -> 138.7 mW jump.
func BenchmarkTable3Pipelined(b *testing.B) {
	demo, res := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.ExploreBudgetsPipelined(res.HierChoice.Spec, demo.CycleBudget, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(pts) > 0 {
			b.ReportMetric(pts[0].Cost.OffChipPower, "loosest-offchip-mW")
			b.ReportMetric(pts[len(pts)-1].Cost.OffChipPower, "tightest-offchip-mW")
		}
	}
}

// BenchmarkTable4WithInterconnect regenerates Table 4 with the bus-model
// extension enabled: the power minimum the paper predicts ("the power
// consumption will also rise again due to the interconnect-related power")
// becomes interior.
func BenchmarkTable4WithInterconnect(b *testing.B) {
	_, res := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	ep.Tech = ep.Tech.WithInterconnect()
	counts := []int{4, 5, 8, 10, 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, okCounts, err := core.ExploreAllocations(res.BudgetChoice.Spec, res.BudgetChoice.Dist, counts, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			minIdx := 0
			for j, v := range vs {
				if v.Cost.OnChipPower < vs[minIdx].Cost.OnChipPower {
					minIdx = j
				}
			}
			b.ReportMetric(float64(okCounts[minIdx]), "power-optimal-count")
			b.ReportMetric(vs[minIdx].Cost.OnChipPower, "min-onchip-mW")
		}
	}
}

// BenchmarkAblationBranchExclusivity quantifies the branch-exclusivity
// modeling decision: how much worse the organization gets (or whether the
// pipeline fails) when the six Huffman coders are treated as co-executing.
func BenchmarkAblationBranchExclusivity(b *testing.B) {
	demo, _ := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.AblationBranchExclusivity(demo, ep)
		if i == 0 && res.With != nil {
			b.ReportMetric(res.With.Cost.TotalPower(), "with-mW")
			if res.Without != nil {
				b.ReportMetric(res.Without.Cost.TotalPower(), "without-mW")
			} else {
				b.ReportMetric(-1, "without-mW") // pipeline infeasible
			}
		}
	}
}

// BenchmarkAblationStructuralCost quantifies the structural conflict term:
// the port demand that cold loops force without it.
func BenchmarkAblationStructuralCost(b *testing.B) {
	demo, _ := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.AblationStructuralCost(demo, ep)
		if i == 0 && res.With != nil && res.Without != nil {
			b.ReportMetric(float64(core.RequiredPortsOf(res.With)["image"]), "with-image-ports")
			b.ReportMetric(float64(core.RequiredPortsOf(res.Without)["image"]), "without-image-ports")
		}
	}
}

// BenchmarkAblationGreedyAssignment measures the optimal-vs-greedy
// assignment gap (the greedy result is the paper's manual-designer
// baseline).
func BenchmarkAblationGreedyAssignment(b *testing.B) {
	demo, _ := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.AblationGreedyAssignment(demo, ep, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.With.Cost.OnChipPower, "optimal-mW")
			b.ReportMetric(res.Without.Cost.OnChipPower, "greedy-mW")
		}
	}
}

// BenchmarkAblationInPlace measures the in-place mapping extension on the
// demonstrator (expected: little savings — BTPC's arrays are frame-long).
func BenchmarkAblationInPlace(b *testing.B) {
	demo, _ := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.AblationInPlace(demo, ep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Without.Cost.OnChipArea-res.With.Cost.OnChipArea, "area-saved-mm2")
		}
	}
}

// BenchmarkWorkloadExploration measures the full physical-memory-management
// stage on the generated (non-BTPC) workloads.
func BenchmarkWorkloadExploration(b *testing.B) {
	cases := []struct {
		name string
		mk   func() (*Spec, WorkloadContext, error)
	}{
		{"MotionEstimation", func() (*Spec, WorkloadContext, error) {
			return MotionEstimationWorkload(176, 144, 16, 7)
		}},
		{"Wavelet", func() (*Spec, WorkloadContext, error) { return WaveletWorkload(512, 512, 4) }},
		{"FIR", func() (*Spec, WorkloadContext, error) { return FIRWorkload(48_000, 64) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s, ctx, err := c.mk()
			if err != nil {
				b.Fatal(err)
			}
			ep := core.DefaultEvalParams()
			tech := *ep.Tech
			tech.OnChipMaxWords = ctx.OnChipMaxWords
			tech.FramePeriod = ctx.FramePeriod
			ep.Tech = &tech
			ep.SBD.OnChipMaxWords = ctx.OnChipMaxWords
			ep.Assign.OnChipMaxWords = ctx.OnChipMaxWords
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := core.Evaluate(s, ctx.CycleBudget, s.Name, ep)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(v.Cost.TotalPower(), "total-mW")
				}
			}
		})
	}
}

// BenchmarkExplore measures the full methodology run with telemetry off
// (nil observer): the baseline the no-op instrumentation must not regress.
func BenchmarkExplore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunAll(core.DemoConfig{Size: 256}, core.DefaultEvalParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreUncached is BenchmarkExplore with the session evaluation
// cache disabled: the gap against BenchmarkExplore is the cross-variant
// memoization win (the per-loop schedule, pattern, and prune caches).
func BenchmarkExploreUncached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ep := core.DefaultEvalParams()
		ep.Memo = nil
		if _, err := core.RunAll(core.DemoConfig{Size: 256}, ep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignParallel measures the assignment search alone — the
// branch-and-bound over on-chip/off-chip bindings — with the worker pool
// width following GOMAXPROCS, so
//
//	go test -bench=AssignParallel -cpu 1,2,4,8
//
// produces the kernel-level scaling curve. The assignment is byte-identical
// at every width; only the wall time may change.
func BenchmarkAssignParallel(b *testing.B) {
	_, res := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	pats := sbd.PrunePatternsCached(nil, res.BudgetChoice.Dist.Patterns)
	ap := ep.Assign
	ap.Workers = pool.New(0) // width = GOMAXPROCS, i.e. the -cpu value
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var a *assign.Assignment
		var err error
		for count := ep.OnChipCount; count <= ep.OnChipCount+6; count++ {
			if a, err = assign.Assign(res.BudgetChoice.Spec, pats, ep.Tech, count, ap); err == nil {
				break
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(a.Cost.OnChipPower, "onchip-mW")
		}
	}
}

// BenchmarkExploreWorkers is BenchmarkExplore with the session worker pool
// width following GOMAXPROCS:
//
//	go test -bench=ExploreWorkers -cpu 1,2,4,8
//
// measures the full-pipeline scaling curve. The produced tables and figures
// are identical at every width.
func BenchmarkExploreWorkers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ep := core.DefaultEvalParams()
		ep.Workers = pool.New(0) // width = GOMAXPROCS, i.e. the -cpu value
		if _, err := core.RunAll(core.DemoConfig{Size: 256}, ep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreObserved is the same run with a collector observer
// attached; the difference against BenchmarkExplore is the telemetry
// overhead. Per-step wall times are reported as custom metrics.
func BenchmarkExploreObserved(b *testing.B) {
	b.ReportAllocs()
	var last *core.Results
	var collector *SpanCollector
	for i := 0; i < b.N; i++ {
		collector = NewCollectorSink()
		o := NewObserver(collector)
		ep := core.DefaultEvalParams()
		ep.Obs = o
		res, err := core.RunAll(core.DemoConfig{Size: 256}, ep)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	_ = last
	// Report each methodology step's wall time from the recorded span tree.
	var rootID uint64
	for _, r := range collector.Records() {
		if r.Name == "run_all" {
			rootID = r.ID
		}
	}
	for _, r := range collector.Records() {
		if r.Parent == rootID {
			b.ReportMetric(float64(r.WallUS)/1000, r.Name+"-ms")
		}
	}
}

// BenchmarkDistribute measures one storage-cycle-budget distribution of the
// full demonstrator specification.
func BenchmarkDistribute(b *testing.B) {
	demo, _ := benchFixture(b)
	ep := core.DefaultEvalParams().ScaleTo(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sbd.Distribute(demo.Spec, demo.CycleBudget, ep.SBD); err != nil {
			b.Fatal(err)
		}
	}
}
