package dtse

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// The flight recorder: a bounded ring of the last N requests that came back
// slow, degraded, or errored, each kept with enough context — the request's
// full span tree, the counter deltas across its lifetime, and the final
// search position — that "why was this request degraded" is answerable
// after the fact without rerunning it. GET /debug/flightrecorder dumps the
// ring, newest first.

// FlightEntry is one recorded request.
type FlightEntry struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	// Reason is why the request was recorded: "error" (non-2xx response),
	// "degraded" (completed best-effort under an expired deadline or abort),
	// or "slow" (above the configured threshold).
	Reason     string  `json:"reason"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	Mode       string  `json:"mode"`            // "spec" or "demo"
	Label      string  `json:"label,omitempty"` // spec name or demo size
	Degraded   bool    `json:"degraded"`
	// Peer is the cluster member that served a forwarded request, recorded
	// when a routed capture errored or ran slow — the first question about
	// a bad forwarded request is "which node".
	Peer string `json:"peer,omitempty"`

	// Search is the exploration's final introspection snapshot: last stage
	// reached, branch-and-bound nodes expanded, incumbent cost and bound gap.
	Search obs.ProgressSnapshot `json:"search"`

	// Spans is the request's full span tree (serve.explore and everything
	// underneath), in end order — children before parents, as in traces.
	Spans []*obs.SpanRecord `json:"spans,omitempty"`

	// Counters holds the observer counter deltas over the request's lifetime
	// (zero deltas omitted) and Gauges the gauge values at completion. Both
	// are process-global — concurrent requests see each other's activity —
	// the same caveat as span allocation deltas.
	Counters map[string]int64 `json:"counter_deltas,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// flightRecorder is the bounded ring. Writes are rare (only degraded or
// errored requests) so a plain mutex suffices.
type flightRecorder struct {
	mu      sync.Mutex
	entries []*FlightEntry
	next    int
	total   int64
}

func newFlightRecorder(capacity int) *flightRecorder {
	return &flightRecorder{entries: make([]*FlightEntry, capacity)}
}

func (f *flightRecorder) add(e *FlightEntry) {
	f.mu.Lock()
	f.entries[f.next] = e
	f.next = (f.next + 1) % len(f.entries)
	f.total++
	f.mu.Unlock()
}

// dump returns the lifetime record count and the held entries, newest
// first.
func (f *flightRecorder) dump() (total int64, out []*FlightEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 1; i <= len(f.entries); i++ {
		e := f.entries[(f.next-i+len(f.entries))%len(f.entries)]
		if e == nil {
			break
		}
		out = append(out, e)
	}
	return f.total, out
}

// size returns how many entries are currently held.
func (f *flightRecorder) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, e := range f.entries {
		if e != nil {
			n++
		}
	}
	return n
}

// deltaCounters subtracts two counter snapshots, keeping nonzero deltas.
func deltaCounters(before, after map[string]int64) map[string]int64 {
	var out map[string]int64
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[name] = d
		}
	}
	return out
}
