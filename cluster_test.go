package dtse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// --- in-process multi-node harness ---

// testCluster is N full dtse servers joined into one consistent-hash ring,
// each behind its own httptest listener — the in-process stand-in for a
// multi-machine deployment.
type testCluster struct {
	servers []*Server
	https   []*httptest.Server
	urls    []string
}

// newTestCluster builds and joins n nodes. optsFor returns node i's
// ServeOptions (so tests can give each node its own observer); copts is
// shared, with Self/Peers filled in per node.
func newTestCluster(t *testing.T, n int, optsFor func(i int) ServeOptions, copts ClusterOptions) *testCluster {
	t.Helper()
	tc := &testCluster{
		servers: make([]*Server, n),
		https:   make([]*httptest.Server, n),
		urls:    make([]string, n),
	}
	for i := 0; i < n; i++ {
		tc.servers[i] = NewServer(optsFor(i))
		tc.https[i] = httptest.NewServer(tc.servers[i].Handler())
		tc.urls[i] = tc.https[i].URL
	}
	for i := 0; i < n; i++ {
		co := copts
		co.Self = tc.urls[i]
		co.Peers = nil
		for j := 0; j < n; j++ {
			if j != i {
				co.Peers = append(co.Peers, tc.urls[j])
			}
		}
		if err := tc.servers[i].JoinCluster(co); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for i := range tc.servers {
			tc.https[i].Close()
			tc.servers[i].Abort()
		}
	})
	return tc
}

func plainOpts(int) ServeOptions { return ServeOptions{} }

// randClusterSpec builds a deterministic random spec request body with
// enough on-chip groups to clear the subtree-distribution gate.
func randClusterSpec(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewSpec(fmt.Sprintf("cl%d", seed))
	nGroups := 5 + rng.Intn(3)
	names := make([]string, nGroups)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
		b.Group(names[i], int64(128<<uint(rng.Intn(4))), 4+2*rng.Intn(6))
	}
	b.Loop("body", 2048+uint64(rng.Intn(2048)))
	for _, name := range names {
		b.Read(name, float64(1+rng.Intn(2)))
		if rng.Intn(2) == 0 {
			b.Write(name, 1)
		}
	}
	s := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteSpecJSON(s, &buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"spec": %s, "budget": %d}`, buf.Bytes(), 200_000+rng.Intn(100_000))
}

func postURL(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// --- determinism at any node count ---

// TestClusterDeterminismAnyNodeCount is the acceptance pin: for random
// specs and a demo run, every front node of a 3-node cluster (routing,
// hedging, incumbent sharing, and subtree distribution all live) returns
// byte-identical response bodies to a plain single node.
func TestClusterDeterminismAnyNodeCount(t *testing.T) {
	solo := NewServer(ServeOptions{})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	defer solo.Abort()

	tc := newTestCluster(t, 3, plainOpts, ClusterOptions{
		HedgeDelay:       20 * time.Millisecond,
		SubtreeMinGroups: 4, // exercise distribution on the small test specs
	})

	bodies := []string{`{"demo": {"size": 16, "seed": 9}}`}
	for seed := int64(0); seed < 5; seed++ {
		bodies = append(bodies, randClusterSpec(t, seed))
	}
	for bi, body := range bodies {
		resp, ref := postURL(t, soloTS.URL, "/v1/explore", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %d: solo status %d: %s", bi, resp.StatusCode, ref)
		}
		for ni, url := range tc.urls {
			resp, got := postURL(t, url, "/v1/explore", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("body %d via node %d: status %d: %s", bi, ni, resp.StatusCode, got)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("body %d via node %d: response diverged from single node\n got: %s\nwant: %s", bi, ni, got, ref)
			}
		}
	}
}

// TestClusterBatchRouting: a batch posted to one front node fans out to
// the item owners and still returns per-item bodies byte-identical to a
// single node, with every item trace id rooted in the batch trace id.
func TestClusterBatchRouting(t *testing.T) {
	solo := NewServer(ServeOptions{})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	defer solo.Abort()

	tc := newTestCluster(t, 3, plainOpts, ClusterOptions{SubtreeMinGroups: -1})

	var items []string
	for seed := int64(10); seed < 18; seed++ {
		items = append(items, randClusterSpec(t, seed))
	}
	batch := `{"items": [` + strings.Join(items, ", ") + `]}`

	resp, body := postURL(t, tc.urls[0], "/v1/explore/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	tid := resp.Header.Get("X-Trace-Id")
	var env struct {
		Items []struct {
			Status  int             `json:"status"`
			TraceID string          `json:"trace_id"`
			Body    json.RawMessage `json:"body"`
		} `json:"items"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(env.Items) != len(items) {
		t.Fatalf("%d results for %d items", len(env.Items), len(items))
	}
	routedRemote := false
	for i, it := range env.Items {
		if it.Status != http.StatusOK {
			t.Fatalf("item %d: status %d: %s", i, it.Status, it.Body)
		}
		if !strings.HasPrefix(it.TraceID, tid+".") {
			t.Fatalf("item %d trace id %q not rooted in batch trace id %q", i, it.TraceID, tid)
		}
		if strings.HasPrefix(it.TraceID, tid+".p") {
			routedRemote = true
		}
		_, ref := postURL(t, soloTS.URL, "/v1/explore", items[i])
		if !bytes.Equal(append(bytes.TrimRight(it.Body, "\n"), '\n'), ref) {
			t.Fatalf("item %d body diverged from single node\n got: %s\nwant: %s", i, it.Body, ref)
		}
	}
	if !routedRemote {
		t.Fatal("no batch item was routed to a peer (8 random specs over 3 nodes should shard)")
	}
}

// --- failure handling ---

// TestClusterPeerKillZeroFailures: killing a node mid-load must cost
// latency only — every request posted to a surviving front completes 200
// with the single-node bytes.
func TestClusterPeerKillZeroFailures(t *testing.T) {
	solo := NewServer(ServeOptions{})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	defer solo.Abort()

	tc := newTestCluster(t, 3, plainOpts, ClusterOptions{
		HedgeDelay:       15 * time.Millisecond,
		EjectAfter:       1,
		EjectFor:         time.Hour,
		SubtreeMinGroups: -1,
	})

	var bodies, refs []string
	for seed := int64(20); seed < 32; seed++ {
		body := randClusterSpec(t, seed)
		_, ref := postURL(t, soloTS.URL, "/v1/explore", body)
		bodies, refs = append(bodies, body), append(refs, string(ref))
	}
	for i, body := range bodies {
		if i == len(bodies)/2 {
			// Kill node 2 abruptly: open connections die, later forwards to it
			// fail at the transport and fail over down the ring walk.
			tc.https[2].CloseClientConnections()
			tc.https[2].Close()
			tc.servers[2].Abort()
		}
		resp, got := postURL(t, tc.urls[0], "/v1/explore", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after kill: status %d: %s", i, resp.StatusCode, got)
		}
		if string(got) != refs[i] {
			t.Fatalf("request %d: response diverged after peer kill\n got: %s\nwant: %s", i, got, refs[i])
		}
	}
}

// TestClusterHedgedCompletion: a member that accepts connections but never
// answers (the gray-failure case ejection alone cannot catch) is hedged
// around — requests it owns still complete, marked by the hedged counter.
func TestClusterHedgedCompletion(t *testing.T) {
	hang := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer stub.Close()
	defer close(hang) // unblock the stub handler before Close waits on it

	node := NewServer(ServeOptions{Obs: obs.New()})
	nodeTS := httptest.NewServer(node.Handler())
	defer nodeTS.Close()
	defer node.Abort()
	if err := node.JoinCluster(ClusterOptions{
		Self:             nodeTS.URL,
		Peers:            []string{stub.URL},
		HedgeDelay:       10 * time.Millisecond,
		SubtreeMinGroups: -1,
	}); err != nil {
		t.Fatal(err)
	}

	// Find a spec the stub owns, as seen from the live node.
	var body string
	for seed := int64(100); ; seed++ {
		if seed > 400 {
			t.Fatal("no stub-owned spec found")
		}
		b := randClusterSpec(t, seed)
		p, err := parseExplore(strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if !node.cluster.router.Owns(routeKey(p)) {
			body = b
			break
		}
	}
	resp, got := postURL(t, nodeTS.URL, "/v1/explore", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	snap := node.obs.Snapshot()
	if snap.Counters["cluster.hedged"] == 0 {
		t.Fatalf("request owned by a hung peer completed without a hedge; counters: %v", snap.Counters)
	}
	if snap.Counters["cluster.fallback_local"] == 0 {
		t.Fatalf("with only a hung peer, the fallback must be local; counters: %v", snap.Counters)
	}
}

// --- trace propagation ---

// spanSink records span records for assertions.
type spanSink struct {
	mu   sync.Mutex
	recs []obs.SpanRecord
}

func (ss *spanSink) Span(rec *obs.SpanRecord) {
	ss.mu.Lock()
	ss.recs = append(ss.recs, *rec)
	ss.mu.Unlock()
}
func (ss *spanSink) Flush(map[string]int64) error { return nil }

func (ss *spanSink) find(name string) []obs.SpanRecord {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var out []obs.SpanRecord
	for _, r := range ss.recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// TestClusterTracePropagation: a forwarded request is one trace end to end
// — the peer's serve.explore span carries the front node's trace id and a
// peer= tag, and the front's serve.forward span names the serving peer.
func TestClusterTracePropagation(t *testing.T) {
	sinks := make([]*spanSink, 2)
	tc := newTestCluster(t, 2, func(i int) ServeOptions {
		sinks[i] = &spanSink{}
		return ServeOptions{Obs: obs.New(sinks[i])}
	}, ClusterOptions{SubtreeMinGroups: -1})

	// Find a spec that node 0 does not own, so posting it to node 0 forwards.
	var body string
	for seed := int64(500); ; seed++ {
		if seed > 800 {
			t.Fatal("no peer-owned spec found")
		}
		b := randClusterSpec(t, seed)
		p, err := parseExplore(strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if !tc.servers[0].cluster.router.Owns(routeKey(p)) {
			body = b
			break
		}
	}
	resp, got := postURL(t, tc.urls[0], "/v1/explore", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	tid := resp.Header.Get("X-Trace-Id")
	if tid == "" {
		t.Fatal("missing X-Trace-Id")
	}

	fwd := sinks[0].find("serve.forward")
	if len(fwd) != 1 {
		t.Fatalf("front recorded %d serve.forward spans, want 1", len(fwd))
	}
	if fwd[0].Fields["trace_id"] != tid || fwd[0].Fields["peer"] != tc.urls[1] {
		t.Fatalf("forward span fields %v; want trace_id=%s peer=%s", fwd[0].Fields, tid, tc.urls[1])
	}
	var served []obs.SpanRecord
	for _, r := range sinks[1].find("serve.explore") {
		if r.Fields["trace_id"] == tid {
			served = append(served, r)
		}
	}
	if len(served) == 0 {
		t.Fatalf("peer recorded no serve.explore span with the forwarded trace id %s", tid)
	}
	for _, r := range served {
		if r.Fields["peer"] != tc.urls[1] {
			t.Fatalf("peer span not tagged with its member id: %v", r.Fields)
		}
	}
}

// --- incumbent exchange over the wire ---

func TestClusterIncumbentEndpointAndBroadcast(t *testing.T) {
	tc := newTestCluster(t, 2, plainOpts, ClusterOptions{SubtreeMinGroups: -1})

	// Direct merge through the wire endpoint.
	key := "spec|test|bb|shared-key"
	post := func(url string, bits uint64) int {
		body := fmt.Sprintf(`{"key": %q, "bits": "%d"}`, key, bits)
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/internal/incumbent", strings.NewReader(body))
		req.Header.Set(clusterInternalHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := post(tc.urls[1], math.Float64bits(42)); st != http.StatusNoContent {
		t.Fatalf("incumbent post status %d", st)
	}
	if bits, ok := tc.servers[1].cluster.board.Best(key); !ok || math.Float64frombits(bits) != 42 {
		t.Fatalf("board after merge: %v %v", bits, ok)
	}
	if st := post(tc.urls[1], math.Float64bits(50)); st != http.StatusNoContent {
		t.Fatalf("worse incumbent post status %d", st)
	}
	if bits, _ := tc.servers[1].cluster.board.Best(key); math.Float64frombits(bits) != 42 {
		t.Fatal("a worse remote cost must not raise the board")
	}

	// A local publish on node 0 broadcasts to node 1 (best-effort, so poll).
	tc.servers[0].cluster.board.Publish(key, math.Float64bits(7))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if bits, ok := tc.servers[1].cluster.board.Best(key); ok && math.Float64frombits(bits) == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("published incumbent never reached the peer board")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterInternalEndpoints404Solo(t *testing.T) {
	solo := NewServer(ServeOptions{})
	ts := httptest.NewServer(solo.Handler())
	defer ts.Close()
	defer solo.Abort()
	for _, path := range []string{"/v1/internal/incumbent", "/v1/internal/subtree"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on a solo server: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// --- cluster metrics exposition ---

func TestClusterMetricsFamilies(t *testing.T) {
	tc := newTestCluster(t, 2, func(int) ServeOptions { return ServeOptions{Obs: obs.New()} },
		ClusterOptions{SubtreeMinGroups: -1})
	// Drive enough traffic that at least one request routes each way.
	for seed := int64(40); seed < 46; seed++ {
		resp, body := postURL(t, tc.urls[0], "/v1/explore", randClusterSpec(t, seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(tc.urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, _ := io.ReadAll(resp.Body)
	for _, family := range []string{
		"dtse_cluster_routed_total", "dtse_cluster_local_total", "dtse_cluster_peer_rtt",
		"dtse_cluster_peers 1", "dtse_cluster_peers_alive 1", "dtse_cluster_incumbents",
	} {
		if !strings.Contains(string(prom), family) {
			t.Fatalf("/metrics missing %s after cluster traffic:\n%s", family, prom)
		}
	}
}

// --- warm index shard ownership ---

// TestWarmIndexShardOwnership pins the boundary rule: with an ownership
// predicate installed, the index must not record foreign fingerprints, must
// not serve an exact hit that moved to another shard, and must skip
// unowned entries during longest-prefix matching.
func TestWarmIndexShardOwnership(t *testing.T) {
	owned := map[string]bool{}
	wi := newWarmIndex()
	wi.setOwns(func(c string) bool { return owned[c] })

	seedA := map[string]int{"a": 0}
	seedB := map[string]int{"b": 1}

	// Key naming: the two entries share no prefix with each other, so the
	// only candidate neighbour for an AAAA-family probe is the AAAA entry.
	const (
		fpA = "AAAAAAAAAAAA-1"
		fpB = "BBBBBBBBBBBB-1"
		// probe shares 13 chars with fpA, 0 with fpB.
		probe = "AAAAAAAAAAAA-2"
	)

	// Recording is gated.
	wi.record(fpA, seedA)
	if len(wi.seeds) != 0 {
		t.Fatal("recorded a fingerprint the node does not own")
	}
	owned[fpA] = true
	owned[fpB] = true
	wi.record(fpA, seedA)
	wi.record(fpB, seedB)

	// Exact hit while owned.
	if got := wi.lookup(fpA); got == nil || got["a"] != 0 {
		t.Fatalf("owned exact lookup = %v", got)
	}
	// Exact entry present but ownership moved away (ring change): no seed.
	owned[fpA] = false
	if got := wi.lookup(fpA); got != nil {
		t.Fatalf("unowned exact lookup must miss, got %v", got)
	}
	// Prefix matching skips unowned entries: the probe's only neighbour is
	// the (unowned) fpA entry, so the lookup must miss rather than seed
	// from another shard's fingerprint.
	owned[probe] = true
	if got := wi.lookup(probe); got != nil {
		t.Fatalf("prefix lookup leaked an unowned shard's seed: %v", got)
	}
	// Ownership moving back revives the entry.
	owned[fpA] = true
	if got := wi.lookup(probe); got == nil || got["a"] != 0 {
		t.Fatalf("re-owned prefix lookup = %v, want the fpA seed", got)
	}
}

// --- queue-depth-aware Retry-After ---

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, maxConc int
		typical         time.Duration
		want            int
	}{
		{0, 1, time.Second, 1},                  // empty queue: one typical wait
		{0, 4, time.Second, 1},                  // wide server, empty queue
		{3, 1, time.Second, 4},                  // 3 queued + us = 4 waves
		{3, 4, time.Second, 1},                  // 4 slots drain all 4 in one wave
		{8, 2, 500 * time.Millisecond, 3},       // ceil(ceil(9/2)=5 waves * 0.5s)
		{10, 4, 2 * time.Second, 6},             // ceil(11/4)=3 waves * 2s
		{0, 1, 0, 1},                            // no latency signal: flat second
		{0, 0, time.Second, 1},                  // degenerate concurrency clamps
		{100, 1, 50 * time.Millisecond, 6},      // long queue, fast requests
		{5, 2, 10 * time.Millisecond, 1},        // sub-second rounds up to 1
		{2, 1, 1500 * time.Millisecond, 5},      // fractional seconds: ceil(3*1.5)
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.maxConc, c.typical); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d, %v) = %d, want %d", c.queued, c.maxConc, c.typical, got, c.want)
		}
	}
}

// TestRetryAfterQueueDepthOnServer: a saturated server's 429 carries a
// hint that grows with its queue depth.
func TestRetryAfterQueueDepthOnServer(t *testing.T) {
	srv := NewServer(ServeOptions{MaxConcurrent: 1, MaxQueue: 1, DefaultTimeout: 3 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Abort()

	// Occupy the slot and the queue with slow demo requests.
	release := make(chan struct{})
	var wg sync.WaitGroup
	srv.sem <- struct{}{} // hold the only slot directly
	srv.queued.Add(1)     // simulate one queued waiter
	defer func() { <-srv.sem; srv.queued.Add(-1); close(release); wg.Wait() }()

	resp, _ := postURL(t, ts.URL, "/v1/explore", `{"demo": {"size": 8}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	// One queued + the rejected request, one slot, no latency history →
	// default timeout (3s) per wave, two waves.
	if want := retryAfterSeconds(1, 1, 3*time.Second); ra != want {
		t.Fatalf("Retry-After %d, want %d (queue-depth-aware)", ra, want)
	}
}
